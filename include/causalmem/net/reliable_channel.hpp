// Reliable-delivery adapter: restores the paper's "reliable, ordered message
// passing between any two processors" contract on top of an unreliable
// transport (typically a FaultyTransport injecting drop/dup/delay).
//
// Mechanism, per directed channel (s -> d):
//   - the sender stamps every message with a per-channel sequence number
//     (Message::rel_seq, 1-based) and keeps a copy until it is acked; the
//     copies live in a deque of consecutive sequence numbers, so a
//     cumulative ack is a prefix pop, not a map search;
//   - the receiver delivers strictly in sequence order, buffering gaps in a
//     bounded ring (ReliableConfig::reorder_window slots) and dropping
//     duplicates, so the layer above sees exactly-once FIFO. A frame past
//     the window is dropped and counted (net.out_of_window) — the sender's
//     retransmission redelivers it once the window opens, so boundedness
//     costs no correctness, only a retransmit;
//   - the receiver acks cumulatively: a standalone REL_ACK after every data
//     frame, plus a piggybacked ack (Message::rel_ack) on reverse-channel
//     data, both meaning "everything <= k arrived";
//   - a retransmission thread re-sends unacked messages after a timeout
//     that backs off exponentially per message (initial_rto doubling up to
//     max_rto); its scan loop paces itself with common/backoff.hpp.
//
// DSM nodes use the adapter unchanged through the Transport interface: the
// wrapped handler re-assembles the channel and invokes the node's handler
// with the original message (rel_* fields are transport-private).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "causalmem/net/transport.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem {

struct ReliableConfig {
  /// First retransmission timeout. Generous relative to a loopback RTT so a
  /// fault-free channel never retransmits spuriously.
  std::chrono::microseconds initial_rto{2000};
  /// Exponential backoff cap: rto doubles per retransmission up to this.
  std::chrono::microseconds max_rto{64000};
  /// Upper bound on the retransmit scan pacing (Backoff max_sleep).
  std::chrono::microseconds tick{500};
  /// Retransmissions per message before the sender gives up (the peer is
  /// presumed dead — counted as net.peer_unreachable). Lossy-but-alive
  /// channels are unaffected: at drop rate p the give-up probability is
  /// p^max_retransmits. 0 = never give up (the pre-crash-tolerance
  /// behaviour: infinite RTO backoff).
  std::uint32_t max_retransmits{20};
  /// Receiver-side reorder-buffer bound, in frames per directed channel. A
  /// frame with rel_seq >= next_deliver_seq + reorder_window is dropped (and
  /// counted as net.out_of_window) instead of buffered, so a hostile or
  /// wildly reordered sender cannot grow the buffer without limit. The
  /// sender's retransmission recovers the dropped frame.
  std::size_t reorder_window{64};
};

class ReliableChannel final : public Transport {
 public:
  explicit ReliableChannel(std::unique_ptr<Transport> inner,
                           ReliableConfig config = {});
  ~ReliableChannel() override;

  void register_node(NodeId id, Handler handler) override;
  void start() override;
  void send(Message m) override;
  void shutdown() override;
  [[nodiscard]] std::size_t node_count() const override {
    return inner_->node_count();
  }
  [[nodiscard]] bool endpoint_up(NodeId id) const override {
    return inner_->endpoint_up(id);
  }
  [[nodiscard]] std::uint64_t endpoint_epoch(NodeId id) const override {
    return inner_->endpoint_epoch(id);
  }
  void attach_stats(StatsRegistry* stats) noexcept override;

  [[nodiscard]] Transport& inner() noexcept { return *inner_; }

  // Recovery-cost totals (also bumped per node when a StatsRegistry is
  // attached: retransmits/acks on the sender, dup-drops on the receiver).
  [[nodiscard]] std::uint64_t retransmit_count() const noexcept {
    return retransmits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dup_dropped_count() const noexcept {
    return dup_drops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t acks_sent_count() const noexcept {
    return acks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peer_unreachable_count() const noexcept {
    return peer_unreachable_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t out_of_window_count() const noexcept {
    return out_of_window_.load(std::memory_order_relaxed);
  }

  /// Forgets all sequencing state on every channel to or from `id`: pending
  /// retransmissions are dropped and both directions restart at sequence 1.
  /// Call while the peer's traffic is still severed (crashed/partitioned) —
  /// this is the channel half of a node restart, pairing with
  /// FaultyTransport::restart_node. Without it a give-up (or the peer's
  /// loss of its receive state) would wedge the channel on a sequence gap.
  void reset_peer(NodeId id);

 private:
  struct Pending {
    Message msg;
    /// Retransmission deadline in obs::now_ns() time — virtual under a
    /// FakeClock, so simulated time fully controls retransmission.
    std::uint64_t deadline_ns{0};
    std::chrono::microseconds rto;
    /// obs::now_ns() at first transmission — retransmission-delay samples
    /// (lat.retransmit_delay_ns) measure from here.
    std::uint64_t first_sent_ns{0};
    /// Retransmissions so far; at config_.max_retransmits the sender gives
    /// up on this message (net.peer_unreachable).
    std::uint32_t retries{0};
    /// Given up (peer presumed dead). Dead entries cannot be erased from
    /// the middle of the deque; they are skipped by the retransmit scan and
    /// popped once they reach the front (by an ack or the dead-prefix pop).
    bool dead{false};
  };

  /// Both halves of one directed channel (s -> d): the sender half lives at
  /// s, the receiver half at d; in-process transports hold them together.
  struct Channel {
    std::mutex mu;
    // Sender side: outstanding[i] holds sequence number base_seq + i — the
    // seqs are consecutive by construction, so the deque IS the window and
    // a cumulative ack is a prefix pop. Invariant:
    // base_seq + outstanding.size() == next_send_seq.
    std::uint64_t next_send_seq{1};
    std::uint64_t base_seq{1};
    std::deque<Pending> outstanding;
    // Receiver side: slot seq % reorder_window buffers seq — within the
    // window [next_deliver_seq, next_deliver_seq + W) slots are unique, so
    // the `present` bit alone identifies a buffered frame.
    std::uint64_t next_deliver_seq{1};
    std::vector<Message> ring;
    std::vector<std::uint8_t> present;
    // True while one thread is popping ready frames and delivering them
    // outside the lock. Frames can arrive on multiple threads (the inner
    // transport's delivery worker, and sender threads when the inner
    // transport delivers replies inline), so without this flag two threads
    // could each pop a ready batch and then interleave their out-of-lock
    // handler calls, breaking per-channel FIFO. The drainer re-checks the
    // ring after each batch, so frames installed during its delivery are
    // picked up before it retires.
    bool draining{false};
  };

  [[nodiscard]] Channel& channel(NodeId from, NodeId to) {
    return *channels_[from * inner_->node_count() + to];
  }
  void bump_node(NodeId node, Counter c) noexcept;
  void on_receive(const Message& m);
  void apply_ack(NodeId sender, NodeId receiver, std::uint64_t acked);
  void send_ack(NodeId receiver, NodeId sender, std::uint64_t acked);
  bool retransmit_due();  ///< one scan; true if anything was re-sent
  void run_retransmitter(const std::stop_token& st);

  std::unique_ptr<Transport> inner_;
  ReliableConfig config_;
  std::vector<Handler> handlers_;
  std::vector<std::unique_ptr<Channel>> channels_;  // n*n, index from*n+to

  std::jthread retransmitter_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> dup_drops_{0};
  std::atomic<std::uint64_t> acks_{0};
  std::atomic<std::uint64_t> peer_unreachable_{0};
  std::atomic<std::uint64_t> out_of_window_{0};
};

}  // namespace causalmem

// Transport abstraction: reliable, per-channel FIFO point-to-point message
// passing between processors — exactly the substrate the paper assumes
// ("reliable, ordered message passing between any two processors").
//
// Delivery invokes the destination's handler on the transport's delivery
// thread; handlers must be non-blocking state machines (they may send
// messages and complete futures, never wait for other messages).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "causalmem/net/message.hpp"
#include "causalmem/obs/trace.hpp"
#include "causalmem/stats/counters.hpp"

namespace causalmem {

class Transport {
 public:
  using Handler = std::function<void(const Message&)>;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  /// Optionally attaches per-node counters; transports bump the net.*
  /// counters (send failures, injected faults, retransmissions) on it.
  /// Decorators forward the registry down the stack. Call before start().
  virtual void attach_stats(StatsRegistry* stats) noexcept { stats_ = stats; }

  /// Registers the message handler for node `id`. Must be called for every
  /// node before `start()`.
  virtual void register_node(NodeId id, Handler handler) = 0;

  /// Begins delivering messages.
  virtual void start() = 0;

  /// Enqueues `m` for delivery to `m.to`. Never blocks for the receiver.
  /// Sends after shutdown are dropped (nodes are quiescing).
  virtual void send(Message m) = 0;

  /// Stops delivery and joins internal threads. Idempotent.
  virtual void shutdown() = 0;

  /// Number of registered endpoints.
  [[nodiscard]] virtual std::size_t node_count() const = 0;

  /// Whether `id`'s endpoint is currently up. Fault-injecting transports
  /// report crash-injected endpoints as down; fault-free transports are
  /// always up. Decorators forward to the layer that injects crashes.
  [[nodiscard]] virtual bool endpoint_up(NodeId id) const {
    (void)id;
    return true;
  }

  /// Incarnation counter of `id`'s endpoint: bumped on every injected crash
  /// and restart, 0 forever on fault-free transports. A requester whose own
  /// endpoint went down or changed incarnation during a request round
  /// learned nothing about the target from that round's timeout (its
  /// request or reply died with its own endpoint), so failure suspicion
  /// keys on this staying constant across the round.
  [[nodiscard]] virtual std::uint64_t endpoint_epoch(NodeId id) const {
    (void)id;
    return 0;
  }

 protected:
  /// Records a message-level trace event into `node`'s tracer. When tracing
  /// is off (no registry, or no tracer attached) the cost is one null check
  /// plus one relaxed load — transports call this unconditionally.
  void trace_msg(NodeId node, obs::TraceEventKind kind,
                 const Message& m) noexcept {
    if (stats_ == nullptr) return;
    if (obs::Tracer* t = stats_->tracer(node)) {
      t->record(kind, static_cast<std::uint8_t>(m.type),
                node == m.from ? m.to : m.from, m.addr,
                m.stamp.size() != 0 ? &m.stamp : nullptr,
                /*ts_ns=*/0, /*dur_ns=*/0, m.trace_id);
    }
  }

  StatsRegistry* stats_{nullptr};
};

/// Latency injected per message: base + uniform jitter in [0, jitter].
/// Channel FIFO order is preserved regardless of the sampled values.
struct LatencyModel {
  std::chrono::microseconds base{0};
  std::chrono::microseconds jitter{0};
  std::uint64_t seed{0x1d2c3b4a59687766ULL};

  [[nodiscard]] bool is_zero() const noexcept {
    return base.count() == 0 && jitter.count() == 0;
  }
};

}  // namespace causalmem

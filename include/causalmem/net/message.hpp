// Wire messages for all three DSM protocols. One flat struct (rather than a
// class hierarchy) keeps the codec trivial and lets transports stay agnostic
// of which protocol is running; unused fields are zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "causalmem/common/codec.hpp"
#include "causalmem/common/types.hpp"
#include "causalmem/vclock/vector_clock.hpp"

namespace causalmem {

/// Leading byte of every encoded message; bumped whenever the layout
/// changes so a mixed-version mesh fails loudly instead of misparsing.
/// v2: added this version byte and the clock mode framing (full/delta).
/// v3: appended the trailing trace_id field. v2 frames are still accepted
/// by decode (trace_id reads as 0), so a v3 reader tolerates v2 peers;
/// a v2 reader rejects v3 frames loudly rather than misparsing.
inline constexpr std::uint8_t kWireVersion = 3;

/// Oldest wire version decode still accepts (tolerated-by-ignore: fields
/// added since then read as zero).
inline constexpr std::uint8_t kMinWireVersion = 2;

enum class MsgType : std::uint8_t {
  // Causal owner protocol (Figure 4).
  kRead = 1,        ///< [READ, x] — request current copy from the owner
  kReadReply,       ///< [R_REPLY, x, v, VT]
  kWrite,           ///< [WRITE, x, v, VT] — ask owner to certify the write
  kWriteReply,      ///< [W_REPLY, x, v, VT]

  // Atomic (Li/Hudak-style) baseline additions.
  kInvalidate,      ///< owner -> copyset member: drop your cached copy
  kInvalidateAck,   ///< copyset member -> owner

  // Causal-broadcast memory (Figure 3 model).
  kBroadcastUpdate, ///< writer -> peer: apply (x, v) with this stamp

  // Reliable-delivery adapter (net/reliable_channel.hpp). Not a protocol
  // message: never reaches a DSM node's handler.
  kRelAck,          ///< receiver -> sender: cumulative ack for one channel

  // Crash tolerance (dsm/failover.hpp). These are recovery traffic, not
  // protocol messages: they are excluded from message accounting.
  kHeartbeat,       ///< failure-detector probe (sent below the reliable layer)
  kSyncRequest,     ///< restarted node -> peer: send me your vector time
  kSyncReply,       ///< peer -> restarted node: my current vector time
  kRecover,         ///< successor -> peer: your freshest copy of this page?
  kRecoverReply,    ///< peer -> successor: copy + writestamp (accepted = have)

  // Durable recovery (persist layer). A restarted node that restored a page
  // from checkpoint + WAL does not need the full copy again — it asks peers
  // only for something FRESHER than its durable bound.
  kCatchupRequest,  ///< restarted node -> peer: copy of x fresher than VT?
  kCatchupReply,    ///< peer -> node: fresher copy (accepted) or "you're
                    ///< current" (!accepted, no payload)
};

[[nodiscard]] const char* msg_type_name(MsgType t) noexcept;

/// One (addr, value, tag) cell — page-granularity replies carry a batch.
struct CellUpdate {
  Addr addr{0};
  Value value{0};
  WriteTag tag{};

  void encode(ByteWriter& w) const;
  static CellUpdate decode(ByteReader& r);
};

struct Message {
  MsgType type{MsgType::kRead};
  NodeId from{kNoNode};
  NodeId to{kNoNode};

  /// Matches replies to their blocked requester. 0 for one-way messages.
  std::uint64_t request_id{0};

  Addr addr{0};
  Value value{0};
  WriteTag tag{};       ///< unique-write identity of `value`
  VectorClock stamp;    ///< writestamp / sender timestamp

  /// W_REPLY only: false when the owner's conflict-resolution policy
  /// rejected the write (Section 4.2's owner-wins rule).
  bool accepted{true};

  /// Page-mode replies: all cells of the page (addr is the page base).
  std::vector<CellUpdate> cells;

  /// Reliable-channel framing (net/reliable_channel.hpp): per-channel
  /// sequence number (0 = unsequenced / not going through the adapter) and
  /// the piggybacked cumulative ack for the reverse channel. kRelAck
  /// messages carry only rel_ack. Zero overhead when the adapter is absent.
  std::uint64_t rel_seq{0};
  std::uint64_t rel_ack{0};

  /// Correlation id linking every message (and trace event) of one protocol
  /// operation across nodes: assigned by the initiator when an operation
  /// first goes remote, echoed by owners into replies and propagated into
  /// invalidation fan-out. 0 = untraced (local ops, recovery traffic,
  /// transport-internal frames, v2 peers). Wire-format v3 appends it to the
  /// frame; decode of a v2 frame leaves it 0.
  std::uint64_t trace_id{0};

  /// Encodes into a pooled frame (common/arena.hpp): steady-state senders
  /// that FrameArena::release() the buffer after use pay no allocation.
  /// Stateless — the stamp goes out as a full clock.
  [[nodiscard]] std::vector<std::byte> encode() const;

  /// Stateful encode for one directed channel: the stamp is delta-compressed
  /// against `tx`'s baseline when that is smaller on the wire (see
  /// VectorClock::encode). Must be paired 1:1, in order, with a
  /// decode_into(bytes, out, &rx) on the receiving end of the same channel.
  [[nodiscard]] std::vector<std::byte> encode(ClockCodecState& tx) const;

  static Message decode(std::span<const std::byte> bytes);

  /// Decodes into `out`, reusing its stamp/cells capacity — the transports'
  /// receive paths recycle one Message per channel so steady-state decodes
  /// are allocation-free. `rx` (nullable) is the channel's clock baseline,
  /// required to accept delta-clock frames.
  static void decode_into(std::span<const std::byte> bytes, Message& out,
                          ClockCodecState* rx);

  [[nodiscard]] std::string to_string() const;
};

}  // namespace causalmem

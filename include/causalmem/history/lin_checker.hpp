// Linearizability checker for register histories with real-time intervals
// (Wing & Gong style search): does a total order of all operations exist
// that (a) respects every process's program order, (b) respects real time —
// if op A's interval ends before op B's begins, A precedes B — and
// (c) makes every read return the latest preceding write to its location?
//
// Operations without timing (end_ns == 0) contribute no real-time
// constraints; a history with no timing at all degenerates to the
// sequential-consistency check.
//
// Used to certify that the atomic DSM baseline really is the strongly
// consistent memory the paper compares causal memory against — and that the
// causal DSM's weak executions (Figure 5) are genuinely not linearizable.
#pragma once

#include <cstddef>

#include "causalmem/history/history.hpp"
#include "causalmem/history/sc_checker.hpp"  // ScResult

namespace causalmem {

[[nodiscard]] ScResult check_linearizability(
    const History& history, std::size_t max_states = 1'000'000);

[[nodiscard]] inline bool is_linearizable(const History& history) {
  return check_linearizability(history) == ScResult::kConsistent;
}

}  // namespace causalmem

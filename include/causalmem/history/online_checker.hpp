// OnlineChecker: an OpObserver that feeds every completed operation through
// a StreamingCausalChecker WHILE the system runs, instead of recording a
// History and checking post-hoc. For a 10^6-op run this replaces the
// Recorder's O(ops) history copy with the checker's bounded live state —
// the memory shape that makes million-op property runs and soak tests
// practical (docs/CHECKING.md, docs/OBSERVABILITY.md).
//
// Flight-recorder integration is DEFERRED: observer callbacks run under the
// node's operation lock, and a flight dump probes every node's vector clock
// (taking node locks) — firing inline could self-deadlock. The first
// violation is latched here; finish() or poll_flight() — called outside any
// operation, e.g. after application threads join, or from DsmSystem's
// shutdown path — files it with the recorder while the system is still
// alive enough to snapshot trace rings, counters and clocks.
#pragma once

#include <mutex>
#include <optional>
#include <string>

#include "causalmem/dsm/observer.hpp"
#include "causalmem/history/streaming_checker.hpp"
#include "causalmem/obs/flight_recorder.hpp"

namespace causalmem {

class OnlineChecker final : public OpObserver {
 public:
  /// `next` (optional) receives every op after the checker consumed it, so
  /// the online check composes with a Recorder or RecentOpsObserver chain.
  explicit OnlineChecker(std::size_t n, StreamingOptions opts = {},
                         OpObserver* next = nullptr)
      : checker_(n, opts), next_(next) {}

  /// Arms deferred flight-recorder triggering; see the header comment.
  void set_flight_recorder(obs::FlightRecorder* fr) {
    std::scoped_lock lock(mu_);
    flight_ = fr;
  }

  void on_read(NodeId node, Addr x, Value v, const WriteTag& tag,
               const OpTiming& timing) override {
    {
      std::scoped_lock lock(mu_);
      checker_.on_read(node, x, v, tag);
    }
    if (next_ != nullptr) next_->on_read(node, x, v, tag, timing);
  }

  void on_write(NodeId node, Addr x, Value v, const WriteTag& tag,
                bool applied, const OpTiming& timing) override {
    {
      std::scoped_lock lock(mu_);
      checker_.on_write(node, x, v, tag);
    }
    if (next_ != nullptr) next_->on_write(node, x, v, tag, applied, timing);
  }

  /// End of stream: classifies parked reads and files any latched violation
  /// with the flight recorder. Call after application threads join, while
  /// the system is still alive. Idempotent.
  void finish() {
    std::optional<StreamingViolation> fire;
    obs::FlightRecorder* fr = nullptr;
    {
      std::scoped_lock lock(mu_);
      if (!checker_.finished()) checker_.finish();
      fire = pending_fire();
      fr = flight_;
    }
    if (fire.has_value() && fr != nullptr) file_violation(*fr, *fire);
  }

  /// Files a latched mid-run violation with the flight recorder without
  /// ending the stream. Safe to call periodically from a driver loop.
  void poll_flight() {
    std::optional<StreamingViolation> fire;
    obs::FlightRecorder* fr = nullptr;
    {
      std::scoped_lock lock(mu_);
      fire = pending_fire();
      fr = flight_;
    }
    if (fire.has_value() && fr != nullptr) file_violation(*fr, *fire);
  }

  [[nodiscard]] bool ok() const {
    std::scoped_lock lock(mu_);
    return checker_.causal_ok();
  }

  [[nodiscard]] std::optional<StreamingViolation> violation() const {
    std::scoped_lock lock(mu_);
    return checker_.first_violation();
  }

  [[nodiscard]] StreamingStats stats() const {
    std::scoped_lock lock(mu_);
    return checker_.stats();
  }

  /// The underlying checker. Call only after application threads joined.
  [[nodiscard]] const StreamingCausalChecker& checker() const {
    return checker_;
  }

 private:
  [[nodiscard]] std::optional<StreamingViolation> pending_fire() {
    // mu_ held. One-shot: the flight recorder latches anyway, but skipping
    // repeat calls keeps poll_flight cheap on the happy path.
    if (flight_fired_ || !checker_.first_violation().has_value()) {
      return std::nullopt;
    }
    flight_fired_ = true;
    return checker_.first_violation();
  }

  static void file_violation(obs::FlightRecorder& fr,
                             const StreamingViolation& v) {
    fr.on_violation("online causal violation: p" + std::to_string(v.op.proc) +
                    "[" + std::to_string(v.op.index) + "] " +
                    bad_pattern_name(v.pattern) + ": " + v.detail);
  }

  mutable std::mutex mu_;
  StreamingCausalChecker checker_;
  OpObserver* next_{nullptr};
  obs::FlightRecorder* flight_{nullptr};
  bool flight_fired_{false};
};

}  // namespace causalmem

// Plain-text trace format for executions, so histories can be saved from
// the Recorder, inspected, edited and re-checked (examples/checker_cli):
//
//     # comment
//     w <proc> <addr> <value>
//     r <proc> <addr> <value>
//
// One operation per line, in any interleaving consistent with per-process
// order. Reads resolve their reads-from write by (addr, value); therefore a
// formatted trace requires write values unique per location (0 = initial).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>

#include "causalmem/history/history.hpp"

namespace causalmem {

/// Renders `history` in trace format (per-process order preserved; ops are
/// emitted process by process, which is a valid interleaving).
/// Contract: write values are unique per location and reads carry matching
/// tags — true for HistoryBuilder output and for recorded executions whose
/// workloads use distinct values.
[[nodiscard]] std::string format_trace(const History& history);

struct TraceParseError {
  std::size_t line{0};
  std::string message;
};

/// Parses trace text into a History (reads-from resolved by value).
/// Returns the error instead of aborting — traces are user input.
[[nodiscard]] std::variant<History, TraceParseError> parse_trace(
    std::istream& in);

}  // namespace causalmem

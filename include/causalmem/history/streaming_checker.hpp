// StreamingCausalChecker: an incremental, polynomial-time causal-consistency
// verdict engine after Bouajjani–Enea–Guerraoui–Hamza, "On Verifying Causal
// Consistency" (POPL'17; PAPERS.md). Where CausalChecker re-walks the whole
// causality graph per read (fine for the paper's figure-sized histories,
// hopeless past ~10^3 ops), this checker consumes operations ONE AT A TIME —
// from a Recorder, an OpObserver chain, or a trace stream — and maintains
// just enough state to recognise the bad patterns that characterise the
// causal-consistency family on differentiated histories (unique write tags,
// which the DSM guarantees by construction):
//
//   CC  (weak causal consistency)  = no ThinAirRead, CyclicCO,
//                                    WriteCOInitRead, WriteCORead
//   CM  (causal memory, Def. 1/2)  = CC + no WriteHBInitRead / WriteHBRead
//                                    (reads count as interveners, not just
//                                    writes — the hb side of the paper's
//                                    "no intervening read or write of x")
//   CCv (causal convergence)       = CC + no CyclicCF (conflict/arbitration
//                                    cycles; checked best-effort, see below)
//
// The CM verdict is the repo's ground truth: causal_ok() agrees with
// CausalChecker::check() on every differentiated history the fuzz corpus can
// produce (tests/history/streaming_fuzz_test.cpp holds the differential
// proof; docs/CHECKING.md derives the equivalence and its one caveat).
//
// Core state, O(procs) per operation amortised plus the live-write table:
//   - one vector clock per process (component q = number of q-ops in the
//     causal past); a read's pre-clock (before merging its reads-from edge)
//     is exactly "causality with the read's own rf edge excluded", the
//     footnote of Definition 1;
//   - per live write, its clock and two kill frontiers: kill_cc[q] = first
//     q-op index at which a co-later WRITE to the same location exists,
//     kill_cm[q] = same for co-later reads of another value. A read of w is
//     stale iff w is in its pre-clock past and some kill entry is too;
//   - ops arrive in any interleaving of per-process program order; a read
//     whose source write has not arrived yet parks its process's stream in a
//     deferral queue (trace files legally forward-reference writes), so
//     processing is always co-topological. finish() classifies what never
//     unparked: ThinAirRead (the write never existed) or CyclicCO (the
//     parked reads form a reads-from/program-order cycle).
//
// Garbage collection keeps per-op memory bounded on gossiping workloads: a
// write dominated by every process's clock can drop its clock (merging it
// would be a no-op), and once additionally overwritten in every process's
// past it becomes a tombstone (any future read of it is a violation by
// construction). Tombstone tags are retained so such reads are classified
// exactly; see docs/CHECKING.md for the memory model. Both judgments
// quantify over EVERY process, so GC only collects when the process set was
// declared complete at construction (nprocs_hint > 0); with an open process
// set the checker stays exact but uncollected (memory grows with the write
// count, as with gc_interval=0). GC never changes verdicts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "causalmem/common/types.hpp"
#include "causalmem/history/history.hpp"

namespace causalmem {

/// The POPL'17 bad patterns (plus the hb variants needed to match this
/// repo's Definition-1 oracle exactly).
enum class BadPattern : std::uint8_t {
  kThinAirRead,      ///< read of a value no write in the execution produced
  kCyclicCO,         ///< program order ∪ reads-from is cyclic
  kWriteCOInitRead,  ///< read of the initial value with a co-prior write of x
  kWriteCORead,      ///< stale read: source write overwritten on a co path
  kWriteHBInitRead,  ///< initial read with only a co-prior READ of x (CM)
  kWriteHBRead,      ///< stale read via an intervening READ of x (CM)
  kCyclicCF,         ///< conflict/arbitration cycle (CCv only)
};

/// Coarse diagnosis taxonomy shared with CausalChecker's reason strings, so
/// the differential fuzz suite can compare classifications across checkers.
enum class ViolationClass : std::uint8_t {
  kThinAir,      ///< value was never written
  kFuture,       ///< read causally precedes the write it read from
  kStale,        ///< source write was overwritten before the read
  kConvergence,  ///< CCv-only arbitration conflict
};

[[nodiscard]] const char* bad_pattern_name(BadPattern p) noexcept;
[[nodiscard]] ViolationClass violation_class_of(BadPattern p) noexcept;

/// Maps a CausalChecker reason string onto the shared taxonomy (the brute
/// checker predates the BadPattern enum; its strings are the stable API).
[[nodiscard]] ViolationClass classify_causal_reason(std::string_view reason);

struct StreamingViolation {
  OpRef op;  ///< the offending read
  BadPattern pattern{BadPattern::kThinAirRead};
  std::string detail;  ///< human-readable diagnosis
};

struct StreamingOptions {
  /// Processed ops between garbage-collection sweeps (0 disables GC —
  /// verdicts are identical, memory just grows with the write count). GC
  /// additionally requires the process count declared at construction
  /// (nprocs_hint > 0); it silently stays idle on an open process set.
  std::uint32_t gc_interval{64};
  /// Maintain the best-effort CCv conflict check (small extra cost per
  /// read; disable for pure-throughput runs).
  bool track_ccv{true};
  /// Conflict edges retained per live write before the CCv check saturates
  /// (ccv_decided() turns false rather than spending unbounded memory).
  std::size_t ccv_edges_per_write{16};
  /// Violations recorded with full diagnoses (the counts keep counting).
  std::size_t max_recorded{64};
};

struct StreamingStats {
  std::uint64_t ops_seen{0};       ///< ops fed in
  std::uint64_t ops_processed{0};  ///< ops through the co-topological stage
  std::uint64_t pending_ops{0};    ///< parked in deferral queues right now
  std::uint64_t peak_pending{0};
  std::uint64_t live_writes{0};  ///< write table size (incl. clock-dropped)
  std::uint64_t peak_live_writes{0};
  std::uint64_t tombstones{0};        ///< GC'd always-stale writes
  std::uint64_t gc_clock_drops{0};    ///< clocks freed by the min-frontier
  std::uint64_t gc_tombstoned{0};     ///< writes demoted to tombstones
  std::uint64_t duplicate_tags{0};    ///< non-differentiated input (kept 1st)
  std::uint64_t approx_bytes{0};      ///< rough live-state footprint
  std::uint64_t peak_approx_bytes{0};
};

class StreamingCausalChecker {
 public:
  /// `nprocs_hint` > 0 declares the COMPLETE process set, which is what
  /// licenses garbage collection (its "dominated by every process"
  /// judgments need a closed set). With the default 0 the set stays open:
  /// processes are admitted on first use, verdicts are identical, but GC
  /// never collects. A process appearing beyond a declared set demotes the
  /// checker back to the open-set regime — a contract violation (abort)
  /// once GC has already dropped state, since that cannot be undone.
  explicit StreamingCausalChecker(std::size_t nprocs_hint = 0,
                                  StreamingOptions opts = {});

  StreamingCausalChecker(StreamingCausalChecker&&) = default;
  StreamingCausalChecker& operator=(StreamingCausalChecker&&) = default;

  /// Feed one operation. Ops must arrive in per-process program order; the
  /// interleaving across processes is arbitrary. For reads, `tag` is the
  /// reads-from identity (is_initial() for the distinguished initial value).
  void on_write(NodeId p, Addr x, Value v, const WriteTag& tag);
  void on_read(NodeId p, Addr x, Value v, const WriteTag& tag);
  void on_op(const Operation& op);

  /// Feeds a whole history (process by process — a valid interleaving).
  void feed(const History& h);

  /// End of stream: classifies parked reads (ThinAirRead / CyclicCO).
  /// Idempotent; no on_op may follow.
  void finish();
  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Weak causal consistency (CC): no write–read bad pattern over co alone.
  [[nodiscard]] bool cc_ok() const noexcept { return !first_cc_.has_value(); }
  /// Causal memory (CM) — the paper's Definition 1/2; agrees with
  /// CausalChecker::check() (the differential-fuzz contract).
  [[nodiscard]] bool causal_ok() const noexcept {
    return !first_causal_.has_value();
  }
  /// Causal convergence (CCv), best effort: catches co-contradicting and
  /// 2-cycle arbitration conflicts; longer cf cycles and saturated state
  /// are reported as undecided, never as violations.
  [[nodiscard]] bool ccv_ok() const noexcept { return cc_ok() && !ccv_bad_; }
  [[nodiscard]] bool ccv_decided() const noexcept { return ccv_decided_; }

  /// First CM-level violation in processing order (processing order is
  /// co-topological, so this may differ from CausalChecker::check()'s
  /// process-major order; it is always a member of check_all()).
  [[nodiscard]] const std::optional<StreamingViolation>& first_violation()
      const noexcept {
    return first_causal_;
  }
  [[nodiscard]] const std::vector<StreamingViolation>& violations()
      const noexcept {
    return violations_;
  }
  [[nodiscard]] std::uint64_t violation_count(BadPattern p) const noexcept {
    return pattern_counts_[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] const StreamingStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t process_count() const noexcept {
    return clocks_.size();
  }

  /// One-shot convenience: feed + finish over a complete history.
  struct Result {
    bool cc{true};
    bool causal{true};
    bool ccv{true};
    bool ccv_decided{true};
    std::optional<StreamingViolation> first;
    StreamingStats stats;
  };
  [[nodiscard]] static Result check(const History& h,
                                    StreamingOptions opts = {});

 private:
  struct TagKey {
    Addr addr{0};
    WriteTag tag{};
    friend bool operator==(const TagKey&, const TagKey&) = default;
  };
  struct TagKeyHash {
    std::size_t operator()(const TagKey& k) const noexcept {
      std::size_t h = std::hash<Addr>{}(k.addr);
      h = h * 1000003 + std::hash<NodeId>{}(k.tag.writer);
      h = h * 1000003 + std::hash<std::uint64_t>{}(k.tag.seq);
      return h;
    }
  };

  /// One live (not yet tombstoned) write. Kill frontiers are 1-based op
  /// indices per process: kill_cc[q] <= pre(r)[q] means process q performed
  /// a WRITE m of this location with another tag, w *-> m, inside r's
  /// causal past — the Definition-1 intervener. kill_cm is the same for
  /// intervening READS. Entries are lazily sized; missing means "none".
  struct WriteRec {
    WriteTag tag{};
    NodeId proc{0};
    std::uint64_t num{0};  ///< 1-based program-order index at `proc`
    Value value{0};
    bool clock_dropped{false};  ///< clock <= every process: merging is a no-op
    bool ccv_saturated{false};
    std::vector<std::uint64_t> clock;
    std::vector<std::uint64_t> kill_cc;
    std::vector<std::uint64_t> kill_cm;
    std::vector<WriteTag> cf_before;  ///< CCv: writes arbitrated before this
  };

  struct InitKill {
    std::vector<std::uint64_t> cc;  ///< writes of x, per process
    std::vector<std::uint64_t> cm;  ///< non-initial reads of x, per process
  };

  void ensure_proc(NodeId p);
  void enqueue_and_drain(const Operation& op);
  void drain_from(NodeId first);
  void process_op(const Operation& op);
  void process_read(const Operation& op);
  void process_write(const Operation& op);
  /// Records intervener frontiers of every live write of `addr` the op at
  /// (q, n) causally follows. `is_write` selects kill_cc vs kill_cm.
  void kill_scan(Addr addr, const WriteTag& value_tag, bool is_write, NodeId q,
                 std::uint64_t n);
  void note_cf_edges(const Operation& read, WriteRec& src,
                     const std::vector<std::uint64_t>& pre);
  void record(OpRef ref, BadPattern pattern, std::string detail);
  void gc();
  void refresh_memory_estimate();

  [[nodiscard]] std::uint64_t self_count(NodeId q) const {
    const auto& v = clocks_[q];
    return q < v.size() ? v[q] : 0;
  }
  /// Component read tolerant of lazily-sized vectors.
  [[nodiscard]] static std::uint64_t at(const std::vector<std::uint64_t>& v,
                                        std::size_t i) noexcept {
    return i < v.size() ? v[i] : 0;
  }
  static void set_component(std::vector<std::uint64_t>& v, std::size_t i,
                            std::uint64_t value);
  static void merge_clock(std::vector<std::uint64_t>& into,
                          const std::vector<std::uint64_t>& from);
  /// min(kill[q], n) with lazy growth (kNoKill when absent).
  static void kill_min(std::vector<std::uint64_t>& kill, std::size_t q,
                       std::uint64_t n);
  /// Index of a process whose kill entry is inside `pre`'s past, or -1.
  [[nodiscard]] static int kill_hit(const std::vector<std::uint64_t>& kill,
                                    const std::vector<std::uint64_t>& pre);
  [[nodiscard]] bool co_before(const WriteRec& w,
                               const std::vector<std::uint64_t>& clk) const {
    return w.clock_dropped || at(clk, w.proc) >= w.num;
  }

  static constexpr std::uint64_t kNoKill = ~std::uint64_t{0};

  StreamingOptions opts_;
  bool finished_{false};
  /// True while the construction-time process count is known complete; GC
  /// collection (clock drops, tombstones) is gated on it. Cleared by a late
  /// process admission (see ensure_proc).
  bool procs_declared_{false};

  // Per-process state. clocks_[q][i] counts i-ops in q's causal past; the
  // self component doubles as the processed-op count.
  std::vector<std::vector<std::uint64_t>> clocks_;
  std::vector<std::deque<Operation>> pending_;
  std::vector<std::uint8_t> blocked_;

  std::unordered_map<TagKey, WriteRec, TagKeyHash> writes_;
  /// Tombstoned writes, compacted: builders and recorders hand out dense
  /// per-writer seqs, so a fully-collected prefix compresses to a single
  /// watermark; out-of-order or gappy seqs wait in an exact overflow set
  /// that drains as the watermark advances. The tombstone forgets the
  /// write's address — a read carrying a real write's tag under the WRONG
  /// address would classify as kWriteCORead instead of kThinAirRead (same
  /// verdict, different label); no tag-respecting recorder produces one.
  struct TombTracker {
    std::uint64_t watermark{0};  ///< every seq <= this is tombstoned
    std::unordered_set<std::uint64_t> pending;
  };
  std::unordered_map<NodeId, TombTracker> tombstones_;
  std::uint64_t tombstone_count_{0};

  [[nodiscard]] bool is_tombstoned(const WriteTag& tag) const;
  void add_tombstone(const WriteTag& tag);
  std::unordered_map<Addr, std::vector<WriteRec*>> by_addr_;
  std::unordered_map<Addr, InitKill> init_kill_;
  std::unordered_map<TagKey, std::vector<NodeId>, TagKeyHash> waiters_;

  std::vector<std::uint64_t> min_frontier_;
  std::uint32_t ops_since_gc_{0};

  std::optional<StreamingViolation> first_cc_;
  std::optional<StreamingViolation> first_causal_;
  bool ccv_bad_{false};
  bool ccv_decided_{true};
  std::vector<StreamingViolation> violations_;
  std::uint64_t pattern_counts_[7] = {};

  StreamingStats stats_;
};

}  // namespace causalmem

// Synthetic causally-consistent workload generator for checker benches and
// large-scale tests: simulates a toy vector-clock-gated causal broadcast
// entirely in-process, so million-op valid histories cost microseconds per
// thousand ops instead of a full DSM run. Writes broadcast with their
// issue-time dependency clock; each process applies a peer's writes in issue
// order once the write's dependencies are applied locally; reads return the
// locally visible value.
//
// Plain "last applied wins" is NOT enough to satisfy the repo's Definition-1
// oracle: a replica that applies a concurrent remote write over its own
// newer write, reads it, and then publishes a flag creates a read-intervener
// kill (w *-> r(old) *-> r) at any third process that joins the flag and
// re-reads the first write. So same-address conflicts are arbitrated by a
// Lamport-stamped last-writer-wins order: each replica's visible write for x
// is the arbitration maximum of every write to x it has applied. Because the
// arbitration order contains causality, any operation on x inside a read's
// causal past carries an arbitration stamp at most the read's visible one —
// there can be no intervening operation on a *newer* write, which is exactly
// the oracle's kill condition. Every generated history therefore passes
// CausalChecker (and converges, so it is CCv-clean too) — asserted by the
// differential-fuzz suite.
#pragma once

#include <cstdint>
#include <vector>

#include "causalmem/common/expect.hpp"
#include "causalmem/common/rng.hpp"
#include "causalmem/history/history.hpp"

namespace causalmem {

struct SyntheticWorkload {
  std::size_t procs{4};
  std::size_t addrs{64};
  std::size_t ops{1000};      ///< total read+write ops across all processes
  double write_ratio{0.4};  ///< probability an op is a write
  /// Per-step, per-peer chance of applying one remote write. Delivery
  /// capacity must scale with the process count: every write needs procs-1
  /// deliveries, so a single delivery attempt per step can never keep up
  /// once write_ratio * (procs - 1) exceeds it — the backlog then grows
  /// linearly, replica clocks lag permanently, and a consumer like the
  /// streaming checker's GC (which needs writes dominated by *every*
  /// process's clock) stalls with the whole history live.
  double deliver_ratio{0.5};
};

/// Generates one causally-consistent history. Deterministic in `seed`.
[[nodiscard]] inline History make_synthetic_causal_history(
    const SyntheticWorkload& w, std::uint64_t seed) {
  CM_EXPECTS(w.procs > 0 && w.addrs > 0);
  struct Broadcast {
    Addr addr;
    Value value;
    WriteTag tag;
    std::uint64_t lamport;            ///< arbitration stamp (ties: writer id)
    std::vector<std::uint64_t> deps;  ///< issuer's applied-counts at issue
  };
  // issued[p] = p's broadcast log; applied[q][p] = prefix of p's log q has
  // applied. Gating: q applies issued[p][i] once applied[q][p] == i and
  // applied[q][r] >= deps[r] for every r != p.
  std::vector<std::vector<Broadcast>> issued(w.procs);
  std::vector<std::vector<std::uint64_t>> applied(
      w.procs, std::vector<std::uint64_t>(w.procs, 0));
  struct Cell {
    Value value{kInitialValue};
    WriteTag tag{};
    std::uint64_t lamport{0};  ///< 0 = the distinguished initial write
    NodeId writer{kNoNode};
  };
  std::vector<std::vector<Cell>> store(w.procs,
                                       std::vector<Cell>(w.addrs));
  std::vector<std::uint64_t> lamport(w.procs, 0);
  History h;
  h.per_process.resize(w.procs);
  for (auto& seq : h.per_process) seq.reserve(w.ops / w.procs + 1);

  Rng rng(seed);
  Value next_value = 1;
  std::size_t emitted = 0;
  auto arb_newer = [](const Cell& cur, std::uint64_t lam, NodeId writer) {
    return lam > cur.lamport || (lam == cur.lamport && writer > cur.writer);
  };
  auto try_deliver = [&](std::size_t q) {
    // Apply at most one deliverable remote write, scanning peers from a
    // random offset so delivery interleavings vary across seeds.
    const std::size_t start = rng.next_below(w.procs);
    for (std::size_t k = 0; k < w.procs; ++k) {
      const std::size_t p = (start + k) % w.procs;
      if (p == q) continue;
      const std::uint64_t i = applied[q][p];
      if (i >= issued[p].size()) continue;
      const Broadcast& b = issued[p][i];
      bool ready = true;
      for (std::size_t r = 0; r < w.procs && ready; ++r) {
        if (r != p) ready = applied[q][r] >= b.deps[r];
      }
      if (!ready) continue;
      Cell& cur = store[q][b.addr];
      if (arb_newer(cur, b.lamport, b.tag.writer)) {
        cur = Cell{b.value, b.tag, b.lamport, b.tag.writer};
      }
      if (lamport[q] < b.lamport) lamport[q] = b.lamport;
      applied[q][p] = i + 1;
      return true;
    }
    return false;
  };

  while (emitted < w.ops) {
    const std::size_t q = rng.next_below(w.procs);
    for (std::size_t k = 1; k < w.procs; ++k) {
      if (rng.chance(w.deliver_ratio)) (void)try_deliver(q);
    }
    const Addr x = rng.next_below(w.addrs);
    Operation op;
    op.proc = static_cast<NodeId>(q);
    op.addr = x;
    if (rng.chance(w.write_ratio)) {
      op.kind = OpKind::kWrite;
      op.value = next_value++;
      op.tag = WriteTag{static_cast<NodeId>(q),
                        static_cast<std::uint64_t>(issued[q].size()) + 1};
      const std::uint64_t lam = ++lamport[q];  // > everything applied here
      Broadcast b{x, op.value, op.tag, lam, applied[q]};
      b.deps[q] = issued[q].size();  // po: prior own writes are dependencies
      issued[q].push_back(std::move(b));
      applied[q][q] += 1;
      // Own writes always win: the incremented Lamport stamp exceeds every
      // stamp applied at q, including the current cell's.
      store[q][x] = Cell{op.value, op.tag, lam, static_cast<NodeId>(q)};
    } else {
      op.kind = OpKind::kRead;
      op.value = store[q][x].value;
      op.tag = store[q][x].tag;
    }
    h.per_process[q].push_back(op);
    ++emitted;
  }
  return h;
}

}  // namespace causalmem

// Execution histories: per-process sequences of read/write operations with
// unique-write tags, exactly the paper's model (Section 2). Histories come
// from two places: hand-written figure examples (HistoryBuilder) and real
// runs of the DSM implementations (Recorder).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "causalmem/common/expect.hpp"
#include "causalmem/common/types.hpp"

namespace causalmem {

enum class OpKind : std::uint8_t { kRead, kWrite };

struct Operation {
  OpKind kind{OpKind::kRead};
  NodeId proc{0};
  Addr addr{0};
  Value value{0};
  /// For a write: its unique identity. For a read: the identity of the write
  /// it read from (is_initial() when it read the distinguished initial 0).
  WriteTag tag{};
  /// False for writes rejected by the owner-wins conflict policy. The write
  /// still exists in the causal order (the checkers treat it normally); its
  /// value was simply never installed anywhere.
  bool applied{true};
  /// Real-time operation interval (steady-clock nanoseconds), when known.
  /// end_ns == 0 means "no timing" — the linearizability checker then
  /// imposes no real-time constraint on this operation. The interval need
  /// not cover the whole call, only contain the operation's take-effect
  /// point (which is what linearizability needs).
  std::uint64_t start_ns{0};
  std::uint64_t end_ns{0};

  [[nodiscard]] bool timed() const noexcept { return end_ns != 0; }

  [[nodiscard]] std::string to_string() const;
};

/// Identifies one operation in a history.
struct OpRef {
  NodeId proc{0};
  std::size_t index{0};

  friend constexpr bool operator==(const OpRef&, const OpRef&) = default;
};

struct History {
  std::vector<std::vector<Operation>> per_process;

  [[nodiscard]] std::size_t process_count() const noexcept {
    return per_process.size();
  }

  [[nodiscard]] const Operation& op(OpRef ref) const {
    CM_EXPECTS(ref.proc < per_process.size());
    CM_EXPECTS(ref.index < per_process[ref.proc].size());
    return per_process[ref.proc][ref.index];
  }

  [[nodiscard]] std::size_t total_ops() const noexcept {
    std::size_t n = 0;
    for (const auto& seq : per_process) n += seq.size();
    return n;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Ergonomic construction of the paper's figure examples. Writes get
/// automatic (proc, seq) tags; reads resolve their reads-from tag by value
/// (the paper's examples keep values unique per location; value 0 with no
/// matching write resolves to the distinguished initial write).
class HistoryBuilder {
 public:
  explicit HistoryBuilder(std::size_t n) : seq_(n, 0) {
    h_.per_process.resize(n);
  }

  /// Pre-sizes every process sequence — one allocation up front instead of
  /// geometric regrows when scripting large histories.
  HistoryBuilder& reserve(std::size_t ops_per_process) {
    for (auto& seq : h_.per_process) seq.reserve(ops_per_process);
    return *this;
  }

  HistoryBuilder& write(NodeId p, Addr x, Value v);
  HistoryBuilder& read(NodeId p, Addr x, Value v);

  /// Resolves every read's reads-from tag (by unique value per location,
  /// with 0 falling back to the initial write) and returns the history.
  [[nodiscard]] History build() const;

 private:
  History h_;
  std::vector<std::uint64_t> seq_;  ///< per-process write tag counters
};

}  // namespace causalmem

// Weaker-than-causal consistency checkers: PRAM (pipelined RAM,
// Lipton/Sandberg) and slow memory (Hutto/Ahamad 1990 — the paper's direct
// ancestor, reference [10]). Together with the sequential-consistency and
// causal checkers this gives the full hierarchy the literature places causal
// memory in:
//
//   sequential  =>  causal  =>  PRAM  =>  slow
//
// and the test suite verifies those inclusions on real executions of the
// three DSM implementations (e.g. the Figure 3 broadcast execution is PRAM
// but not causal).
#pragma once

#include <optional>
#include <string>

#include "causalmem/history/history.hpp"
#include "causalmem/history/sc_checker.hpp"

namespace causalmem {

/// PRAM: for every process p there is a serialization of ALL writes plus
/// p's reads that respects every process's program order and in which each
/// read returns the latest preceding write to its location. Checked by
/// projecting away every other process's reads and reusing the SC search,
/// per reader; worst case exponential, bounded by `max_states` per reader.
[[nodiscard]] ScResult check_pram_consistency(
    const History& history, std::size_t max_states = 1'000'000);

[[nodiscard]] inline bool is_pram_consistent(const History& history) {
  return check_pram_consistency(history) == ScResult::kConsistent;
}

struct SlowViolation {
  OpRef read;
  std::string reason;
};

/// Slow memory: every process observes the writes of each single process to
/// each single location in issue order (and its own writes immediately).
/// The distinguished initial write of a location is treated as every
/// writer's zeroth write to it, so regressing to the initial value after
/// observing a real write is a violation. Linear time.
[[nodiscard]] std::optional<SlowViolation> check_slow_consistency(
    const History& history);

[[nodiscard]] inline bool is_slow_consistent(const History& history) {
  return !check_slow_consistency(history).has_value();
}

}  // namespace causalmem

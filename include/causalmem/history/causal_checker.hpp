// The causal memory correctness oracle: implements Definitions 1 and 2 of
// the paper exactly.
//
// Causality is the union of program order and reads-from, transitively
// closed. A read o = r(x)v reading from write o' = w(x)v is correct iff v is
// *live* for o:
//   1. o' is concurrent with o — judged with o's own reads-from edge
//      excluded (the paper's footnote on Definition 1), or
//   2. o' (transitively) precedes o with no intervening read or write of x
//      carrying a different value.
//
// The checker also computes live sets (the paper's alpha(o)) and answers
// precedence/concurrency queries so tests can assert the worked examples of
// Figures 1 and 2 verbatim.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "causalmem/history/history.hpp"

namespace causalmem {

struct CausalViolation {
  OpRef read;          ///< the offending read
  std::string reason;  ///< human-readable diagnosis
};

class CausalChecker {
 public:
  /// Builds the causality graph. Aborts (contract) if a read's tag refers to
  /// a write that does not exist in the history.
  explicit CausalChecker(const History& history);

  /// First violation found, or nullopt when the execution is correct on
  /// causal memory (Definition 2).
  [[nodiscard]] std::optional<CausalViolation> check() const;

  /// Every violating read (tooling wants the full list, not just the first).
  [[nodiscard]] std::vector<CausalViolation> check_all() const;

  /// The paper's alpha(o): every value live for the read at `ref`.
  /// Includes the distinguished initial value when it is live.
  [[nodiscard]] std::set<Value> live_set(OpRef ref) const;

  /// True iff op a transitively precedes op b (a *-> b) in the full
  /// causality graph (program order + all reads-from edges).
  [[nodiscard]] bool precedes(OpRef a, OpRef b) const;

  /// True iff a and b are concurrent in the full causality graph.
  [[nodiscard]] bool concurrent(OpRef a, OpRef b) const {
    return !precedes(a, b) && !precedes(b, a) && !(a == b);
  }

 private:
  struct Node {
    Operation op;
    bool is_initial{false};     ///< virtual initial write of one location
    OpRef ref{};                ///< valid when !is_initial
    std::vector<std::size_t> succ;
    std::vector<std::size_t> pred;
    /// Reads: the graph edge index of this read's own reads-from edge
    /// (into pred), excluded per Definition 1. kNoEdge for writes / reads
    /// from the initial value... (initial reads still get an rf edge).
    std::size_t own_rf_pred_pos{kNoEdge};
    std::size_t rf_source{kNoEdge};  ///< reads: node index of the write read
  };

  static constexpr std::size_t kNoEdge = static_cast<std::size_t>(-1);

  /// Set of node ids reaching `target`, optionally skipping target's own
  /// reads-from edge.
  [[nodiscard]] std::vector<bool> reaches(std::size_t target,
                                          bool skip_own_rf) const;
  /// Set of node ids reachable from `source`.
  [[nodiscard]] std::vector<bool> reachable_from(std::size_t source) const;

  /// The tag of the value an operation carries (write identity, or a read's
  /// reads-from identity).
  [[nodiscard]] static WriteTag value_tag(const Operation& op) {
    return op.tag;
  }

  [[nodiscard]] std::optional<CausalViolation> check_read(
      std::size_t read_node) const;

  [[nodiscard]] std::size_t node_of(OpRef ref) const;

  std::vector<Node> nodes_;
  std::vector<std::size_t> initial_of_addr_keys_;  // parallel arrays
  std::vector<std::size_t> read_nodes_;            // all read node indices
  std::size_t first_real_node_{0};
};

/// Convenience wrapper: true iff `history` is a correct execution on causal
/// memory.
[[nodiscard]] inline bool is_causally_consistent(const History& history) {
  return !CausalChecker(history).check().has_value();
}

}  // namespace causalmem

// Sequential-consistency checker: decides whether some interleaving of the
// per-process sequences explains every read as "latest preceding write to
// that location" (Lamport 1979). Used to show which executions causal memory
// admits that strongly consistent memory forbids (Figures 3 and 5).
//
// The search is exponential in the worst case; a state budget bounds it and
// yields kUndecided when exhausted (never hit by the paper-scale histories
// the tests use).
#pragma once

#include <cstddef>

#include "causalmem/history/history.hpp"

namespace causalmem {

enum class ScResult {
  kConsistent,    ///< a witnessing total order exists
  kInconsistent,  ///< no interleaving explains the reads
  kUndecided,     ///< state budget exhausted
};

[[nodiscard]] ScResult check_sequential_consistency(
    const History& history, std::size_t max_states = 1'000'000);

/// Convenience: true iff definitely sequentially consistent.
[[nodiscard]] inline bool is_sequentially_consistent(const History& history) {
  return check_sequential_consistency(history) == ScResult::kConsistent;
}

}  // namespace causalmem

// One-call consistency verdict over the whole checker hierarchy
// (sequential => causal => PRAM => slow). The simulation explorer feeds
// every executed schedule's history through this: causal memory is the
// contract under test, and the weaker models are checked too because a
// schedule that breaks PRAM or slow memory while passing the causal checker
// would mean a checker bug, not a protocol bug — worth failing loudly.
#pragma once

#include <cstddef>
#include <string>

#include "causalmem/history/history.hpp"

namespace causalmem {

struct ConsistencyReport {
  bool causal{true};
  bool pram{true};
  bool slow{true};
  /// False when the bounded PRAM search ran out of states (kUndecided);
  /// `pram` stays true in that case — undecided is not a violation.
  bool pram_decided{true};
  /// Diagnosis of the first failed check ("" when ok()).
  std::string reason;

  [[nodiscard]] bool ok() const noexcept { return causal && pram && slow; }
};

/// Runs the causal, PRAM and slow-memory checkers over `history`.
/// `pram_max_states` bounds the per-reader PRAM state search.
[[nodiscard]] ConsistencyReport check_consistency_hierarchy(
    const History& history, std::size_t pram_max_states = 1'000'000);

}  // namespace causalmem

// One-call consistency verdict over the whole checker hierarchy
// (sequential => causal => PRAM => slow). The simulation explorer feeds
// every executed schedule's history through this: causal memory is the
// contract under test, and the weaker models are checked too because a
// schedule that breaks PRAM or slow memory while passing the causal checker
// would mean a checker bug, not a protocol bug — worth failing loudly.
#pragma once

#include <cstddef>
#include <string>

#include "causalmem/history/history.hpp"
#include "causalmem/history/streaming_checker.hpp"

namespace causalmem {

struct ConsistencyReport {
  bool causal{true};
  bool pram{true};
  bool slow{true};
  /// False when the bounded PRAM search ran out of states (kUndecided);
  /// `pram` stays true in that case — undecided is not a violation.
  bool pram_decided{true};
  /// Diagnosis of the first failed check ("" when ok()).
  std::string reason;

  [[nodiscard]] bool ok() const noexcept { return causal && pram && slow; }
};

/// Runs the causal, PRAM and slow-memory checkers over `history`.
/// `pram_max_states` bounds the per-reader PRAM state search.
[[nodiscard]] ConsistencyReport check_consistency_hierarchy(
    const History& history, std::size_t pram_max_states = 1'000'000);

struct StreamingHierarchyOptions {
  std::size_t pram_max_states{1'000'000};
  /// The bounded PRAM search is super-linear in the history; above this many
  /// total ops it is skipped — `pram` stays true, `pram_decided` turns
  /// false, matching the existing "undecided is not a violation" contract.
  std::size_t pram_op_limit{20'000};
  StreamingOptions checker{};
};

/// Same verdict contract as check_consistency_hierarchy, with the causal
/// stage served by StreamingCausalChecker (linear in the history) instead
/// of the brute-force Definition-1 oracle — this is what makes 10^5–10^6-op
/// histories checkable. The slow-memory stage is linear and always runs;
/// PRAM runs below `pram_op_limit`. docs/CHECKING.md derives why the
/// streaming causal verdict agrees with the brute-force one.
[[nodiscard]] ConsistencyReport check_consistency_hierarchy_streaming(
    const History& history, const StreamingHierarchyOptions& options = {});

/// Brute-force hierarchy below `streaming_from` total ops (byte-identical
/// diagnoses for existing small scopes, which the sim determinism suite
/// relies on), streaming hierarchy at or above it.
[[nodiscard]] ConsistencyReport check_consistency_hierarchy_auto(
    const History& history, std::size_t streaming_from = 4096);

}  // namespace causalmem

// Recorder: an OpObserver that captures a live execution as a History for
// post-hoc checking. Implementations invoke the observer in each node's
// program order; a single mutex keeps cross-node appends safe.
//
// Sized for big histories: pass `reserve_per_process` so a 10^6-op run
// costs one allocation per process instead of log(n) geometric regrows
// (and the regrow copies) under the lock, and move the history out with
// take_history() instead of copying megabytes through history().
#pragma once

#include <mutex>
#include <utility>

#include "causalmem/dsm/observer.hpp"
#include "causalmem/history/history.hpp"

namespace causalmem {

class Recorder final : public OpObserver {
 public:
  explicit Recorder(std::size_t n, std::size_t reserve_per_process = 0) {
    history_.per_process.resize(n);
    if (reserve_per_process != 0) {
      for (auto& seq : history_.per_process) seq.reserve(reserve_per_process);
    }
  }

  void on_read(NodeId node, Addr x, Value v, const WriteTag& tag,
               const OpTiming& timing) override {
    std::scoped_lock lock(mu_);
    history_.per_process[node].push_back(Operation{
        OpKind::kRead, node, x, v, tag, true, timing.start_ns, timing.end_ns});
    ++count_;
  }

  void on_write(NodeId node, Addr x, Value v, const WriteTag& tag,
                bool applied, const OpTiming& timing) override {
    std::scoped_lock lock(mu_);
    history_.per_process[node].push_back(Operation{OpKind::kWrite, node, x, v,
                                                   tag, applied,
                                                   timing.start_ns,
                                                   timing.end_ns});
    ++count_;
  }

  /// Snapshot of the execution so far. Call after application threads join.
  [[nodiscard]] History history() const {
    std::scoped_lock lock(mu_);
    return history_;
  }

  /// Moves the recorded execution out (the recorder keeps its process count
  /// but is empty afterwards). For histories big enough that history()'s
  /// copy would dominate — call after application threads join.
  [[nodiscard]] History take_history() {
    std::scoped_lock lock(mu_);
    History out = std::move(history_);
    history_ = History{};
    history_.per_process.resize(out.per_process.size());
    count_ = 0;
    return out;
  }

  [[nodiscard]] std::size_t op_count() const {
    std::scoped_lock lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  History history_;
  std::size_t count_{0};
};

}  // namespace causalmem

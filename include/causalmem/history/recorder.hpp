// Recorder: an OpObserver that captures a live execution as a History for
// post-hoc checking. Implementations invoke the observer in each node's
// program order; a single mutex keeps cross-node appends safe.
#pragma once

#include <mutex>

#include "causalmem/dsm/observer.hpp"
#include "causalmem/history/history.hpp"

namespace causalmem {

class Recorder final : public OpObserver {
 public:
  explicit Recorder(std::size_t n) { history_.per_process.resize(n); }

  void on_read(NodeId node, Addr x, Value v, const WriteTag& tag,
               const OpTiming& timing) override {
    std::scoped_lock lock(mu_);
    history_.per_process[node].push_back(Operation{
        OpKind::kRead, node, x, v, tag, true, timing.start_ns, timing.end_ns});
  }

  void on_write(NodeId node, Addr x, Value v, const WriteTag& tag,
                bool applied, const OpTiming& timing) override {
    std::scoped_lock lock(mu_);
    history_.per_process[node].push_back(Operation{OpKind::kWrite, node, x, v,
                                                   tag, applied,
                                                   timing.start_ns,
                                                   timing.end_ns});
  }

  /// Snapshot of the execution so far. Call after application threads join.
  [[nodiscard]] History history() const {
    std::scoped_lock lock(mu_);
    return history_;
  }

  [[nodiscard]] std::size_t op_count() const {
    std::scoped_lock lock(mu_);
    std::size_t n = 0;
    for (const auto& s : history_.per_process) n += s.size();
    return n;
  }

 private:
  mutable std::mutex mu_;
  History history_;
};

}  // namespace causalmem

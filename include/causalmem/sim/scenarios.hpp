// Canned model-checking scenarios: small scripted workloads packaged as
// explorer RunFns. Each run builds a fresh SimScheduler + DsmSystem +
// Recorder, executes the per-process scripts as cooperative tasks (one
// scheduler choice point per operation), feeds the recorded history through
// the consistency-checker hierarchy, and reports the verdict.
//
// The two bundled small-scope configs are the harness's ground truth:
//   small_scope_causal()          — the Fig. 4 owner protocol on the classic
//                                   2-node cross-write probe; every schedule
//                                   must be checker-clean.
//   small_scope_broadcast(false)  — broadcast WITHOUT vector-clock delivery
//                                   gating; exhaustive DFS must find the
//                                   3-node causal-transitivity violation
//                                   (the explorer's known-bad self-test).
//
// Crash/partition/restart faults are ChaosEvents: a dedicated "chaos" task
// parks until each event's virtual due time and then acts on the
// SimTransport / DsmSystem, so fault timing is part of the explored
// schedule, not wall-clock accident.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "causalmem/common/types.hpp"
#include "causalmem/dsm/broadcast/node.hpp"
#include "causalmem/dsm/causal/config.hpp"
#include "causalmem/history/consistency.hpp"
#include "causalmem/history/history.hpp"
#include "causalmem/sim/explorer.hpp"
#include "causalmem/sim/scheduler.hpp"

namespace causalmem::sim {

/// One scripted operation of a scenario process.
struct ScriptOp {
  enum class Kind : std::uint8_t { kRead, kWrite, kSleep };
  Kind kind{Kind::kRead};
  Addr addr{0};
  Value value{0};  ///< written value, or virtual-ns delay for kSleep

  [[nodiscard]] static ScriptOp read(Addr x) {
    return ScriptOp{Kind::kRead, x, 0};
  }
  [[nodiscard]] static ScriptOp write(Addr x, Value v) {
    return ScriptOp{Kind::kWrite, x, v};
  }
  /// Parks until `delay_ns` of virtual time passed since the run started
  /// (absolute, like ChaosEvent::after_ns — NOT relative to the previous
  /// op), so scripts can be sequenced against chaos events exactly.
  [[nodiscard]] static ScriptOp sleep_until(std::uint64_t after_ns) {
    return ScriptOp{Kind::kSleep, 0, static_cast<Value>(after_ns)};
  }
};

/// One fault, scheduled at a virtual-time offset from the run's start. The
/// chaos task executes events in order; a restart clears the target's
/// crashed flag only after the node-level rejoin completed, so the node's
/// workload resumes against recovered state.
struct ChaosEvent {
  enum class Kind : std::uint8_t {
    kCrash,
    kRestart,
    kPartition,
    kHeal,
    // Durable-persistence chaos (require CausalScenarioConfig::persist).
    kCheckpoint,       ///< force an async checkpoint of the node's cells now
    kCrashWithDisk,    ///< crash; synced bytes survive, unsynced tail is torn
    kCrashLosingDisk,  ///< crash AND media loss: both files vanish
    kRecoverFromDisk,  ///< restart: rejoin restores from checkpoint + WAL
  };
  Kind kind{Kind::kCrash};
  std::uint64_t after_ns{0};  ///< virtual delay from run start
  NodeId node{0};             ///< crash / restart target
  NodeId from{0};             ///< partition / heal edge (directed)
  NodeId to{0};

  [[nodiscard]] static ChaosEvent crash(std::uint64_t after_ns, NodeId node) {
    return ChaosEvent{Kind::kCrash, after_ns, node, 0, 0};
  }
  [[nodiscard]] static ChaosEvent restart(std::uint64_t after_ns,
                                          NodeId node) {
    return ChaosEvent{Kind::kRestart, after_ns, node, 0, 0};
  }
  [[nodiscard]] static ChaosEvent partition(std::uint64_t after_ns,
                                            NodeId from, NodeId to) {
    return ChaosEvent{Kind::kPartition, after_ns, 0, from, to};
  }
  [[nodiscard]] static ChaosEvent heal(std::uint64_t after_ns, NodeId from,
                                       NodeId to) {
    return ChaosEvent{Kind::kHeal, after_ns, 0, from, to};
  }
  [[nodiscard]] static ChaosEvent checkpoint(std::uint64_t after_ns,
                                             NodeId node) {
    return ChaosEvent{Kind::kCheckpoint, after_ns, node, 0, 0};
  }
  [[nodiscard]] static ChaosEvent crash_with_disk(std::uint64_t after_ns,
                                                  NodeId node) {
    return ChaosEvent{Kind::kCrashWithDisk, after_ns, node, 0, 0};
  }
  [[nodiscard]] static ChaosEvent crash_losing_disk(std::uint64_t after_ns,
                                                    NodeId node) {
    return ChaosEvent{Kind::kCrashLosingDisk, after_ns, node, 0, 0};
  }
  [[nodiscard]] static ChaosEvent recover_from_disk(std::uint64_t after_ns,
                                                    NodeId node) {
    return ChaosEvent{Kind::kRecoverFromDisk, after_ns, node, 0, 0};
  }
};

/// Owner-protocol scenario. scripts[i] runs as node i's application task;
/// missing/empty scripts mean the node only serves requests. Chaos configs
/// need config.request_timeout > 0 and failover=true, or a crashed owner
/// blocks its clients forever (which the scheduler then reports as the
/// deadlock it is).
struct CausalScenarioConfig {
  std::size_t nodes{2};
  CausalConfig config{};
  bool failover{false};
  bool heartbeat{false};
  std::chrono::microseconds heartbeat_interval{2000};
  std::chrono::microseconds heartbeat_suspect_after{20000};
  std::vector<std::vector<ScriptOp>> scripts;
  std::vector<ChaosEvent> chaos;
  /// Durable persistence over one scenario-owned MemVfs: checkpoints + WAL
  /// survive crash/restart events within the run (and only within it — the
  /// vfs dies with the scenario), deterministically under the scheduler.
  /// Required by the kCheckpoint/kCrashWithDisk/kCrashLosingDisk/
  /// kRecoverFromDisk chaos kinds; implies failover for the restart path.
  bool persist{false};
  /// Checkpoint every N WAL appends (0 = only explicit kCheckpoint events).
  std::uint32_t checkpoint_every{0};
  SimOptions sim{};
  bool trace{true};
  /// When non-empty, arm a FlightRecorder with this artifact base directory:
  /// an execution whose history fails the consistency checker dumps the full
  /// observability state (correlated trace, counters, clocks, recent ops)
  /// there before the system is torn down.
  std::string flight_dir;
  /// Also chain an OnlineChecker (streaming causal check during the run, in
  /// addition to the post-hoc hierarchy verdict); see docs/CHECKING.md.
  bool online_check{false};
};

/// Broadcast-memory scenario (no owners, no chaos: replicas are symmetric
/// and ops never block, so crash exploration adds nothing here).
struct BroadcastScenarioConfig {
  std::size_t nodes{3};
  BroadcastConfig config{};
  std::vector<std::vector<ScriptOp>> scripts;
  SimOptions sim{};
  bool trace{true};
  /// Same contract as CausalScenarioConfig::flight_dir.
  std::string flight_dir;
  /// Same contract as CausalScenarioConfig::online_check.
  bool online_check{false};
};

/// Everything one execution observed, serialized deterministically — the
/// determinism regression test asserts these byte-identical across two runs
/// of the same strategy.
struct ScenarioOutcome {
  History history;
  ConsistencyReport consistency;
  std::string history_text;   ///< per-process op listing
  std::string trace_text;     ///< merged trace stream, one event per line
  std::string counters_text;  ///< every counter of every node, incl. zeros
};

/// Executes the scenario once under `strategy`. `out` (optional) receives
/// the full observation for determinism checks.
[[nodiscard]] ExecutionResult run_causal_scenario(
    const CausalScenarioConfig& cfg, Strategy& strategy,
    ScenarioOutcome* out = nullptr);
[[nodiscard]] ExecutionResult run_broadcast_scenario(
    const BroadcastScenarioConfig& cfg, Strategy& strategy,
    ScenarioOutcome* out = nullptr);

/// Packages a scenario as an explorer RunFn (config captured by value).
[[nodiscard]] RunFn make_causal_run(CausalScenarioConfig cfg);
[[nodiscard]] RunFn make_broadcast_run(BroadcastScenarioConfig cfg);

/// 2 nodes, 2 locations, 6 ops: P0: w(x0,1) r(x1) w(x1,2);
/// P1: w(x1,3) r(x0) w(x0,4). Striped ownership puts x0 on P0 and x1 on P1,
/// so the script mixes local ops with owner round trips in both directions.
[[nodiscard]] CausalScenarioConfig small_scope_causal();

/// 3 nodes probing causal transitivity: P0: w(x,1); P1: r(x) w(y,2);
/// P2: r(y) r(x). With causal_delivery=false a schedule that delivers P1's
/// update to P2 before P0's makes P2 observe r(y)=2 then r(x)=0 — the
/// violation the explorer must find. With gating on, every schedule is
/// clean. (2 nodes would NOT work: per-channel FIFO alone already yields
/// causal delivery between two processes.)
[[nodiscard]] BroadcastScenarioConfig small_scope_broadcast(
    bool causal_delivery);

}  // namespace causalmem::sim

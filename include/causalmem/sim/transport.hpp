// SimTransport: the Transport implementation for deterministic simulation.
//
// No delivery threads. send() only appends to a per-channel FIFO queue; the
// SimScheduler asks for the set of non-empty channels (deliverable_channels)
// and pops exactly one head per chosen deliver event (deliver_one), running
// the destination handler inline on the scheduler thread. Per-channel FIFO
// is structural — a deque per directed channel — so the substrate the paper
// assumes ("reliable, ordered message passing") holds on every schedule
// while INTER-channel order is fully under the explorer's control.
//
// Crash / partition semantics mirror FaultyTransport so the PR-3 failover
// path behaves identically under simulation: sends from or to a crashed
// node (or across a blocked channel) are dropped and counted as
// kNetFaultDrop against the sender. One deliberate difference: crash_node
// also purges messages already queued from/to the node. In the real
// decorator "in flight" is an OS-timing accident; here the same nuance is
// explorable deterministically — a schedule that delivers a message before
// the crash event models in-flight delivery, one that doesn't models loss.
//
// Header-only on purpose: DsmSystem (a header template) instantiates this
// in its sim branch, and consumers that never simulate (the benches) must
// not acquire a link dependency on the sim library. Everything it calls on
// SimScheduler is inline.
//
// Thread-safety: none needed. Under the cooperative scheduler exactly one
// logical thread runs at a time, and the scheduler's handshake mutex
// orders task/scheduler transitions, so plain containers are both safe and
// deterministic here.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "causalmem/common/arena.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/net/message.hpp"
#include "causalmem/net/transport.hpp"
#include "causalmem/sim/scheduler.hpp"

namespace causalmem::sim {

class SimTransport final : public Transport {
 public:
  /// Creates a simulated transport for nodes 0..n-1 and attaches it to
  /// `sched` (which must outlive this transport). `exercise_codec`
  /// round-trips every message through the byte codec, same as
  /// InMemTransport.
  SimTransport(std::size_t n, SimScheduler* sched, bool exercise_codec = false)
      : exercise_codec_(exercise_codec),
        endpoints_(n),
        channels_(n * n),
        codec_(exercise_codec ? n * n : 0),
        blocked_(n * n, 0),
        crashed_(n, 0),
        epochs_(n, 0) {
    CM_EXPECTS(n > 0);
    CM_EXPECTS(sched != nullptr);
    sched->attach_transport(this);
  }

  ~SimTransport() override { shutdown(); }

  // Transport ------------------------------------------------------------
  void register_node(NodeId id, Handler handler) override {
    CM_EXPECTS(id < endpoints_.size());
    CM_EXPECTS_MSG(!started_, "register_node after start()");
    CM_EXPECTS(handler != nullptr);
    endpoints_[id] = std::move(handler);
  }

  void start() override {
    CM_EXPECTS_MSG(!started_, "transport started twice");
    for (const Handler& h : endpoints_) {
      CM_EXPECTS_MSG(h != nullptr, "node missing handler");
    }
    started_ = true;
  }

  void send(Message m) override {
    if (stopped_) return;
    const std::size_t n = endpoints_.size();
    CM_EXPECTS(m.from < n && m.to < n);
    if (exercise_codec_) {
      // Same recycling scheme as InMemTransport::send: pooled frame,
      // per-channel clock-delta baselines (encode/decode inline keeps them
      // in lockstep on every schedule), swap to reuse message buffers. All
      // deterministic — only byte representation changes, never order.
      CodecState& cs = codec_[m.from * n + m.to];
      std::vector<std::byte> wire = m.encode(cs.tx);
      Message::decode_into(wire, cs.scratch, &cs.rx);
      FrameArena::release(std::move(wire));
      std::swap(m, cs.scratch);
    }
    if (crashed_[m.from] != 0 || crashed_[m.to] != 0 ||
        blocked_[m.from * n + m.to] != 0) {
      drop(m);
      return;
    }
    trace_msg(m.from, obs::TraceEventKind::kSend, m);
    channels_[m.from * n + m.to].push_back(std::move(m));
    ++pending_;
  }

  void shutdown() override {
    if (stopped_) return;
    stopped_ = true;
    // Drop undelivered messages silently: receivers are quiescing, same as
    // InMemTransport::shutdown.
    for (auto& q : channels_) q.clear();
    pending_ = 0;
  }

  [[nodiscard]] std::size_t node_count() const override {
    return endpoints_.size();
  }

  [[nodiscard]] bool endpoint_up(NodeId id) const override {
    return !is_crashed(id);
  }

  [[nodiscard]] std::uint64_t endpoint_epoch(NodeId id) const override {
    CM_EXPECTS(id < endpoints_.size());
    return epochs_[id];
  }

  // Fault injection (schedulable events) ----------------------------------
  /// Crashes `id`: queued messages from/to it are purged (each counted as a
  /// kNetFaultDrop against its sender) and subsequent sends from/to it are
  /// dropped until restart_node(id).
  void crash_node(NodeId id) {
    CM_EXPECTS(id < endpoints_.size());
    crashed_[id] = 1;
    ++epochs_[id];
    const std::size_t n = endpoints_.size();
    for (std::size_t from = 0; from < n; ++from) {
      for (std::size_t to = 0; to < n; ++to) {
        if (from != id && to != id) continue;
        auto& q = channels_[from * n + to];
        for (Message& m : q) {
          drop(m);
          --pending_;
        }
        q.clear();
      }
    }
  }

  /// Lifts a crash_node(id). Protocol state is NOT touched — the node must
  /// rejoin via DsmSystem::restart_node, as with FaultyTransport.
  void restart_node(NodeId id) {
    CM_EXPECTS(id < endpoints_.size());
    crashed_[id] = 0;
    ++epochs_[id];
  }

  [[nodiscard]] bool is_crashed(NodeId id) const {
    CM_EXPECTS(id < endpoints_.size());
    return crashed_[id] != 0;
  }

  /// Toggles a directed channel partition. Blocked channels drop sends;
  /// messages queued before the cut stay deliverable (in flight), matching
  /// FaultyTransport.
  void set_partition(NodeId from, NodeId to, bool blocked) {
    const std::size_t n = endpoints_.size();
    CM_EXPECTS(from < n && to < n);
    blocked_[from * n + to] = blocked ? 1 : 0;
  }

  // Scheduler interface ----------------------------------------------------
  /// Messages queued and not yet delivered.
  [[nodiscard]] std::size_t pending_count() const noexcept { return pending_; }

  /// Total messages delivered (parity with InMemTransport::delivered_count).
  [[nodiscard]] std::uint64_t delivered_count() const noexcept {
    return delivered_;
  }

  /// Appends one kDeliver choice per non-empty channel, in (from, to) order,
  /// labelled with the head message's type.
  void append_deliverable(std::vector<Choice>* out) const {
    const std::size_t n = endpoints_.size();
    for (std::size_t from = 0; from < n; ++from) {
      for (std::size_t to = 0; to < n; ++to) {
        const auto& q = channels_[from * n + to];
        if (q.empty()) continue;
        Choice c;
        c.kind = ChoiceKind::kDeliver;
        c.from = static_cast<NodeId>(from);
        c.to = static_cast<NodeId>(to);
        c.label = msg_type_name(q.front().type);
        out->push_back(std::move(c));
      }
    }
  }

  /// Delivers the head of channel from->to inline (handler runs on the
  /// calling — scheduler — thread). The channel must be non-empty.
  void deliver_one(NodeId from, NodeId to) {
    const std::size_t n = endpoints_.size();
    CM_EXPECTS(from < n && to < n);
    auto& q = channels_[from * n + to];
    CM_EXPECTS_MSG(!q.empty(), "deliver_one on empty channel");
    Message m = std::move(q.front());
    q.pop_front();
    --pending_;
    trace_msg(m.to, obs::TraceEventKind::kRecv, m);
    endpoints_[m.to](m);
    ++delivered_;
  }

 private:
  void drop(const Message& m) {
    if (stats_ != nullptr) stats_->node(m.from).bump(Counter::kNetFaultDrop);
    // trace_msg is non-const only through stats_, safe from crash purge.
    trace_msg(m.from, obs::TraceEventKind::kFaultDrop, m);
  }

  /// Per directed channel: clock-delta baselines + recycled decode target.
  struct CodecState {
    ClockCodecState tx;
    ClockCodecState rx;
    Message scratch;
  };

  bool exercise_codec_;
  std::vector<Handler> endpoints_;
  std::vector<std::deque<Message>> channels_;  // n*n, index from*n+to
  std::vector<CodecState> codec_;              // n*n when exercising, else 0
  std::vector<std::uint8_t> blocked_;          // n*n, directed
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint64_t> epochs_;  ///< per-endpoint crash/restart count
  std::size_t pending_{0};
  std::uint64_t delivered_{0};
  bool started_{false};
  bool stopped_{false};
};

}  // namespace causalmem::sim

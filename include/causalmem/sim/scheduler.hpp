// SimScheduler: single-threaded deterministic simulation of a DsmSystem.
//
// Message delivery, per-node application steps and timer expiry are events
// in one scheduler-controlled loop. Application workloads run as
// cooperative tasks: each has a real OS thread, but exactly one logical
// thread (one task, or the scheduler itself) executes at any moment — the
// scheduler resumes a task, the task runs until it parks on a wait
// condition (coop::park — future waits, flush fences, yields) or finishes,
// and control returns to the scheduler. Message handlers run inline on the
// scheduler thread during deliver events. Under this discipline every
// mutex in the protocol stack is uncontended and every execution is a pure
// function of the choice sequence (the Schedule).
//
// Time is virtual: the scheduler owns an obs::FakeClock installed as the
// global clock source. Each executed event advances it by a fixed tick;
// when no event is runnable the clock jumps to the earliest parked-task
// deadline or timer due-time, so request timeouts and failover suspicion
// fire deterministically. If nothing can ever run, the run reports a
// deadlock with a per-task diagnosis instead of hanging.
//
// A Strategy chooses among the runnable events each step; see
// sim/explorer.hpp for the search strategies built on top.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "causalmem/common/coop.hpp"
#include "causalmem/common/expect.hpp"
#include "causalmem/common/rng.hpp"
#include "causalmem/obs/clock.hpp"
#include "causalmem/sim/schedule.hpp"

namespace causalmem::sim {

class SimTransport;

/// Picks the next event to execute. `choices` is non-empty and
/// deterministically ordered (deliverable channels by (from, to), then
/// runnable tasks by index, then due timers by index).
class Strategy {
 public:
  /// Returned instead of an index to abort the run (RunReport.error is then
  /// taken from error_message()).
  static constexpr std::size_t kAbort = static_cast<std::size_t>(-1);

  Strategy() = default;
  Strategy(const Strategy&) = delete;
  Strategy& operator=(const Strategy&) = delete;
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::size_t pick(const std::vector<Choice>& choices) = 0;

  /// Diagnostic for a kAbort return.
  [[nodiscard]] virtual std::string error_message() const { return {}; }
};

/// Canonical schedule: always the first runnable event.
class FirstChoiceStrategy final : public Strategy {
 public:
  std::size_t pick(const std::vector<Choice>& choices) override {
    (void)choices;
    return 0;
  }
};

/// Seeded uniform random walk over the runnable set. Same seed + same
/// scenario => bit-identical execution (determinism_test.cpp enforces it).
class RandomWalkStrategy final : public Strategy {
 public:
  explicit RandomWalkStrategy(std::uint64_t seed) : rng_(seed) {}

  std::size_t pick(const std::vector<Choice>& choices) override {
    return static_cast<std::size_t>(rng_.next_below(choices.size()));
  }

 private:
  Rng rng_;
};

/// Replays a recorded schedule by content: each recorded step must match a
/// currently runnable choice (kind + ids) or the run aborts with a
/// divergence diagnostic. After the recorded steps are exhausted the
/// strategy continues canonically (index 0), so a minimized prefix plus
/// canonical tail is a complete reproduction recipe.
class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(Schedule schedule) : schedule_(std::move(schedule)) {}

  std::size_t pick(const std::vector<Choice>& choices) override;
  [[nodiscard]] std::string error_message() const override { return error_; }

  /// Steps of the recorded schedule consumed so far.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  Schedule schedule_;
  std::size_t pos_{0};
  std::string error_;
};

struct SimOptions {
  /// Virtual epoch. Non-zero so "timestamp 0" stays distinguishable.
  std::uint64_t start_ns{1'000'000'000ULL};
  /// Virtual time added after every executed event. Keeps timestamps
  /// distinct (traces, histories) while staying far below protocol
  /// timeouts; deadlines still fire via forced advancement.
  std::uint64_t event_tick_ns{1'000};
  /// Abort guard against runaway schedules (livelocks under random walk).
  std::uint64_t max_steps{1'000'000};
};

/// Outcome of one simulated execution.
struct RunReport {
  /// Every task finished and no message was left undelivered.
  bool completed{false};
  /// No event was runnable, no deadline or timer could advance time, and
  /// unfinished tasks remained: `error` carries the per-task diagnosis.
  bool deadlocked{false};
  std::string error;
  std::uint64_t steps{0};
  std::uint64_t end_ns{0};  ///< virtual time when the run ended
  Schedule schedule;        ///< executed choices, in order
  /// Search bookkeeping, parallel to schedule.steps: how many choices were
  /// runnable at each step, and which index was taken (explorer input).
  std::vector<std::size_t> branching;
  std::vector<std::size_t> chosen;

  [[nodiscard]] bool ok() const noexcept { return completed && error.empty(); }
};

/// The deterministic simulation scheduler. Construction installs the
/// virtual clock and the coop parker process-globally (and the destructor
/// removes them), so exactly one SimScheduler may exist at a time; build
/// the scheduler first, then the DsmSystem(s) under test, then run().
class SimScheduler final : public coop::Parker {
 public:
  explicit SimScheduler(SimOptions options = {});
  ~SimScheduler() override;

  /// Registers a cooperative task (one application workload). Call before
  /// run(). Returns the task index (the `actor` of its step choices).
  std::uint32_t add_task(std::string name, std::function<void()> body);

  /// Registers a timer firing at virtual `due_ns`, then every `period_ns`
  /// (0 = one-shot). `fire` runs on the scheduler thread and must not
  /// block; blocking chaos (a node restart's rejoin) belongs in a task.
  /// Inline for the same reason as attach_transport: DsmSystem's sim branch
  /// calls it from a header template.
  std::uint32_t add_timer(std::string name, std::uint64_t due_ns,
                          std::uint64_t period_ns,
                          std::function<void()> fire) {
    CM_EXPECTS_MSG(!ran_, "add_timer after run()");
    CM_EXPECTS(fire != nullptr);
    timers_.push_back(Timer{std::move(name), due_ns, period_ns,
                            std::move(fire), /*done=*/false});
    return static_cast<std::uint32_t>(timers_.size() - 1);
  }

  /// Called by SimTransport's constructor; at most one transport per
  /// scheduler. Inline so the header-only SimTransport needs no sim-library
  /// symbol.
  void attach_transport(SimTransport* transport) {
    CM_EXPECTS_MSG(transport_ == nullptr, "scheduler already has a transport");
    CM_EXPECTS(transport != nullptr);
    transport_ = transport;
  }

  /// Executes the simulation to completion under `strategy`. One run per
  /// scheduler instance.
  RunReport run(Strategy& strategy);

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return clock_.now_ns();
  }

  // coop::Parker ----------------------------------------------------------
  void park(const std::function<bool()>& ready, std::uint64_t deadline_ns,
            const char* what) override;
  [[nodiscard]] bool on_task_thread() const noexcept override;

 private:
  struct Task {
    std::string name;
    std::function<void()> body;
    std::thread thread;
    enum class State : std::uint8_t {
      kIdle,      ///< runnable: waiting for the scheduler to resume it
      kRunning,   ///< currently executing (scheduler is blocked)
      kParked,    ///< waiting on `ready` / `deadline_ns`
      kFinished,
    };
    State state{State::kIdle};
    bool started{false};
    bool resume{false};  ///< scheduler -> task handshake flag
    std::function<bool()> ready;
    std::uint64_t deadline_ns{0};
    const char* what{""};
  };

  struct Timer {
    std::string name;
    std::uint64_t due_ns{0};
    std::uint64_t period_ns{0};
    std::function<void()> fire;
    bool done{false};
  };

  /// Thrown into parked tasks when the run aborts; task wrappers swallow it.
  struct TaskAbort {};

  [[nodiscard]] bool task_runnable(const Task& t) const;
  void collect_choices(std::vector<Choice>* out) const;
  void execute(const Choice& c, std::size_t idx);
  void resume_task(Task& t);
  void task_main(Task& t);
  void abort_tasks();
  void join_tasks();
  [[nodiscard]] std::string deadlock_diagnosis() const;

  SimOptions opt_;
  // mutable: ClockSource::now_ns() is a non-const virtual (it can be a real
  // clock read), but FakeClock's is a relaxed load — logically const.
  mutable obs::FakeClock clock_;
  SimTransport* transport_{nullptr};
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<Timer> timers_;

  // Scheduler <-> task handshake. One mutex/cv pair for all tasks; the
  // per-task `resume` flag and the global `task_active_` flag carry the
  // baton. Predicated waits make the notify_all broadcast race-free.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool task_active_{false};
  bool aborting_{false};
  bool ran_{false};
};

}  // namespace causalmem::sim

// Schedule: the decision record of one simulated execution, and its
// replayable text serialization.
//
// A simulation run is fully determined by the sequence of choices the
// scheduler made — which channel head to deliver, which task to step, which
// timer to fire. Everything else (virtual-time advancement, message
// contents, protocol state) is recomputed identically on replay. A schedule
// file is therefore a complete, minimal reproduction recipe: CI failures
// attach one, and `sim_explore --replay` re-executes it bit-for-bit.
//
// Text format (version header required):
//
//   # causalmem-schedule-v1
//   meta <key> <value...>          (zero or more; value may contain spaces)
//   deliver <from> <to> [label]    (deliver the head of channel from->to)
//   step <task-index> [label]      (run task until it parks or finishes)
//   timer <timer-index> [label]    (fire a due timer)
//
// Labels are diagnostics only (message type, task name); replay matches on
// kind + ids. Blank lines and '#' comments are ignored past the header.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "causalmem/common/types.hpp"

namespace causalmem::sim {

enum class ChoiceKind : std::uint8_t { kDeliver = 0, kStep, kTimer };

[[nodiscard]] const char* choice_kind_name(ChoiceKind k) noexcept;

/// One schedulable event the scheduler could (or did) execute.
struct Choice {
  ChoiceKind kind{ChoiceKind::kStep};
  NodeId from{kNoNode};     ///< kDeliver: channel source
  NodeId to{kNoNode};       ///< kDeliver: channel destination
  std::uint32_t actor{0};   ///< kStep: task index; kTimer: timer index
  std::string label;        ///< diagnostics only (task name, message type)

  /// Identity match for replay: kind and ids, ignoring the label.
  [[nodiscard]] bool matches(const Choice& o) const noexcept {
    return kind == o.kind && from == o.from && to == o.to && actor == o.actor;
  }

  /// One serialized schedule line (no trailing newline).
  [[nodiscard]] std::string to_line() const;
};

/// An executed (or to-be-replayed) sequence of choices plus free-form
/// metadata (scenario name, seed, config summary).
struct Schedule {
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<Choice> steps;

  void set_meta(std::string key, std::string value);
  [[nodiscard]] std::optional<std::string> meta_value(
      const std::string& key) const;

  [[nodiscard]] std::string to_text() const;

  /// Parses the v1 text format. Returns false (and sets `error`) on any
  /// malformed input — schedule files cross process boundaries, so this is
  /// a soft failure, not a contract violation.
  static bool parse(const std::string& text, Schedule* out,
                    std::string* error);

  /// Writes to_text() to `path`. Returns false and sets `error` on I/O
  /// failure.
  bool save(const std::string& path, std::string* error = nullptr) const;

  /// Loads and parses `path`; nullopt (and `error`) on failure.
  static std::optional<Schedule> load(const std::string& path,
                                      std::string* error = nullptr);
};

}  // namespace causalmem::sim

// Schedule explorer: systematic and randomized search over the scheduler's
// choice tree, with checker-verdict plumbing and failure minimization.
//
// A scenario is packaged as a RunFn — a callable that builds a fresh
// scheduler + system + workload, executes it under a given Strategy, and
// returns the RunReport plus the consistency verdict on the observed
// history. The explorer never inspects protocol state; it only drives
// strategies and reads verdicts, so the same machinery explores the causal
// owner protocol, the broadcast protocols, and chaos variants alike.
//
// Three search modes (ISSUE: random walk / exhaustive DFS / delay-bounded):
//   explore_random  — seeded random walks; each seed is independently
//                     replayable.
//   explore_dfs     — stateless iterative-deepening-free DFS over choice
//                     index sequences via a prefix odometer: replay a
//                     prefix, continue canonically (index 0), then advance
//                     the deepest advanceable position. With delay_bound
//                     >= 0 the same odometer skips prefixes with more than
//                     k non-canonical choices — delay-bounded search, the
//                     classic small-k bug-finding regime.
//
// Any failing execution (consistency violation, deadlock, livelock, replay
// divergence) is minimized — shortest choice prefix that still fails, with
// the canonical tail implied — and dumped as a replayable schedule artifact.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "causalmem/sim/schedule.hpp"
#include "causalmem/sim/scheduler.hpp"

namespace causalmem::sim {

/// Replays a fixed index prefix of choices, then continues canonically
/// (index 0 forever). The DFS odometer's workhorse: a prefix IS a tree
/// position.
class PrefixStrategy final : public Strategy {
 public:
  explicit PrefixStrategy(std::vector<std::size_t> prefix)
      : prefix_(std::move(prefix)) {}

  std::size_t pick(const std::vector<Choice>& choices) override;
  [[nodiscard]] std::string error_message() const override { return error_; }

 private:
  std::vector<std::size_t> prefix_;
  std::size_t pos_{0};
  std::string error_;
};

/// One scenario execution: the schedule that ran and the checker verdict on
/// the history it produced.
struct ExecutionResult {
  RunReport report;
  bool consistent{true};
  std::string violation;  ///< checker diagnosis when !consistent
  /// Flight-recorder artifact directory, when the scenario armed a recorder
  /// (CausalScenarioConfig::flight_dir) and this execution's history failed
  /// the checker; "" otherwise.
  std::string flight_artifact;

  /// Failed = inconsistent history OR a run that did not complete cleanly
  /// (deadlock, livelock, strategy abort) — all are findings.
  [[nodiscard]] bool failed() const { return !consistent || !report.ok(); }
  [[nodiscard]] std::string failure() const {
    return !consistent ? violation : report.error;
  }
};

/// Builds a fresh scheduler + system + workload, runs it under `strategy`,
/// checks the observed history. Must be a pure function of the strategy's
/// decisions: same picks => same ExecutionResult (determinism_test enforces
/// this for the bundled scenarios).
using RunFn = std::function<ExecutionResult(Strategy&)>;

struct ExploreOptions {
  /// Schedule budget (DFS stops un-exhausted; random caps seeds).
  std::uint64_t max_schedules{100'000};
  /// >= 0: delay-bounded search — at most this many non-canonical choices
  /// per schedule. -1: full exhaustive DFS.
  int delay_bound{-1};
  /// Shrink a failing schedule to the shortest failing prefix before
  /// reporting (costs at most one extra run per prefix step).
  bool minimize{true};
  /// When non-empty, the failing repro schedule is written here.
  std::string artifact_path;
};

struct ExploreResult {
  std::uint64_t schedules_run{0};
  /// DFS: the whole (bounded) tree was covered. Random: all seeds ran.
  bool exhausted{false};
  bool found_failure{false};
  std::string failure;  ///< first failure's diagnosis
  Schedule repro;       ///< minimized replayable schedule of that failure
  std::string artifact_written;  ///< path actually written ("" if none)
  /// Flight-recorder dump of the first failing execution ("" when the
  /// scenario has no recorder armed) — rides alongside the schedule artifact.
  std::string flight_artifact;

  [[nodiscard]] bool clean() const noexcept { return !found_failure; }
};

/// Exhaustive (or delay-bounded, opt.delay_bound >= 0) DFS over the choice
/// tree. Stops at the first failure or when the tree/budget is exhausted.
[[nodiscard]] ExploreResult explore_dfs(const RunFn& run,
                                        ExploreOptions opt = {});

/// Random walks with seeds first_seed .. first_seed + num_seeds - 1.
/// Stops at the first failing seed.
[[nodiscard]] ExploreResult explore_random(const RunFn& run,
                                           std::uint64_t first_seed,
                                           std::uint64_t num_seeds,
                                           ExploreOptions opt = {});

/// Re-executes a recorded schedule (content-matched; diverging replays fail
/// the run). This is how a CI artifact is reproduced locally.
[[nodiscard]] ExecutionResult replay(const RunFn& run,
                                     const Schedule& schedule);

/// Shrinks a failing execution to the shortest choice prefix that still
/// fails, returned as a replayable content schedule. `runs_used` (optional)
/// reports how many executions the search took.
[[nodiscard]] Schedule minimize_failure(const RunFn& run,
                                        const RunReport& failing,
                                        std::uint64_t* runs_used = nullptr);

/// The DFS odometer: next index-prefix after an execution whose per-step
/// sibling counts were `branching` and chosen indices were `chosen`.
/// Returns false when the (delay-bounded) tree is exhausted. Exposed for
/// the explorer's own tests.
[[nodiscard]] bool next_prefix(const std::vector<std::size_t>& chosen,
                               const std::vector<std::size_t>& branching,
                               int delay_bound,
                               std::vector<std::size_t>* out);

}  // namespace causalmem::sim
